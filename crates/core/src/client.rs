//! Closed-loop client actor: plays transaction plans against its
//! coordinator replica and records per-transaction latency metrics.
//!
//! The per-client state machine lives in [`ClientSlot`] so it can be
//! driven two ways: one [`Client`] actor per client (the reference
//! configuration, one mailbox and kernel timer set per client), or many
//! slots packed into one aggregated [`crate::ClientPool`] actor (the
//! scale configuration, state arrays and a shared timer wheel).

use gdur_obs::AbortCause;
use gdur_sim::{Context, ProcessId, SimDuration, SimTime};
use gdur_store::{TxId, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::messages::{ClientOp, ClientReply, Msg};
use crate::txn::{PlanOp, TxSource, TxnPlan};

/// Metrics of one finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnRecord {
    /// The transaction.
    pub tx: TxId,
    /// `begin` was sent at this instant.
    pub started_at: SimTime,
    /// `commit` was requested at this instant.
    pub submitted_at: SimTime,
    /// The outcome arrived at this instant.
    pub decided_at: SimTime,
    /// True if the transaction committed.
    pub committed: bool,
    /// True if the transaction wrote nothing.
    pub read_only: bool,
    /// Why the transaction aborted (`None` iff `committed`).
    pub cause: Option<AbortCause>,
}

impl TxnRecord {
    /// Termination latency: commit request → outcome (the paper's Figure 3
    /// metric for update transactions).
    pub fn termination_latency(&self) -> SimDuration {
        self.decided_at.saturating_since(self.submitted_at)
    }

    /// Full transaction latency: begin → outcome (Figure 4's metric).
    pub fn total_latency(&self) -> SimDuration {
        self.decided_at.saturating_since(self.started_at)
    }
}

/// The transaction a slot currently has in flight.
pub(crate) struct InFlight {
    pub(crate) tx: TxId,
    pub(crate) plan: TxnPlan,
    pub(crate) next_op: usize,
    pub(crate) started_at: SimTime,
    pub(crate) submitted_at: SimTime,
    pub(crate) read_only: bool,
    /// Outstanding per-operation timeout: (tag, kernel timer id) — used
    /// by the one-actor [`Client`] only.
    pub(crate) timer: Option<(u64, u64)>,
    /// Armed op-timeout deadline in the owning pool's timer wheel — used
    /// by [`crate::ClientPool`] only (the wheel needs the exact instant
    /// back for O(log n) cancellation).
    pub(crate) wheel_deadline: Option<SimTime>,
}

/// One logical closed-loop client: its workload source, private RNG, and
/// in-flight transaction. Everything here is per-client *state*; who sends
/// the messages and arms the timers (a dedicated actor or a pool) is the
/// owner's concern.
pub(crate) struct ClientSlot {
    pub(crate) source: Box<dyn TxSource + Send>,
    pub(crate) rng: SmallRng,
    pub(crate) issued: u64,
    pub(crate) next_seq: u64,
    pub(crate) current: Option<InFlight>,
}

impl ClientSlot {
    pub(crate) fn new(source: Box<dyn TxSource + Send>, seed: u64) -> Self {
        ClientSlot {
            source,
            rng: SmallRng::seed_from_u64(seed),
            issued: 0,
            next_seq: 0,
            current: None,
        }
    }

    /// True once the slot has issued its full budget.
    pub(crate) fn exhausted(&self, max_txns: Option<u64>) -> bool {
        matches!(max_txns, Some(max) if self.issued >= max)
    }

    /// Opens the next transaction: bumps the sequence, maps it to a
    /// [`TxId`] via `mk_tx` (per-client actors use their own pid, pools
    /// encode the client index), draws the plan, and installs it as the
    /// in-flight transaction. Returns the new id so the owner can send
    /// `Begin`.
    pub(crate) fn open(&mut self, now: SimTime, mk_tx: impl FnOnce(u64) -> TxId) -> TxId {
        self.issued += 1;
        self.next_seq += 1;
        let tx = mk_tx(self.next_seq);
        let plan = self.source.next_plan(&mut self.rng);
        let read_only = plan.read_only();
        self.current = Some(InFlight {
            tx,
            plan,
            next_op: 0,
            started_at: now,
            submitted_at: now,
            read_only,
            timer: None,
            wheel_deadline: None,
        });
        tx
    }

    /// The next operation to put on the wire — `Commit` once the plan is
    /// drained (stamping `submitted_at`), a read/update otherwise.
    pub(crate) fn next_wire_op(&mut self, now: SimTime, value_proto: &Value) -> ClientOp {
        let r = self.current.as_mut().expect("a transaction is running");
        if r.next_op == r.plan.ops.len() {
            r.submitted_at = now;
            return ClientOp::Commit;
        }
        let op = r.plan.ops[r.next_op].clone();
        r.next_op += 1;
        match op {
            PlanOp::Read(key) => ClientOp::Read { key },
            PlanOp::Update(key) => ClientOp::Update {
                key,
                value: value_proto.clone(),
            },
        }
    }

    /// Closes the in-flight transaction into a [`TxnRecord`].
    pub(crate) fn finish(
        &mut self,
        decided_at: SimTime,
        committed: bool,
        cause: Option<AbortCause>,
    ) -> TxnRecord {
        let r = self.current.take().expect("a transaction is running");
        TxnRecord {
            tx: r.tx,
            started_at: r.started_at,
            submitted_at: r.submitted_at,
            decided_at,
            committed,
            read_only: r.read_only,
            cause,
        }
    }
}

impl std::fmt::Debug for ClientSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientSlot")
            .field("issued", &self.issued)
            .field("in_flight", &self.current.is_some())
            .finish()
    }
}

/// A closed-loop client bound to one coordinator replica.
///
/// The client emulates one of the paper's client threads: it runs
/// transactions back-to-back (no think time), reading plans from a
/// [`TxSource`]. Updated values are fixed-size payloads, cloned from one
/// shared buffer so allocation cost stays out of the measurement.
pub struct Client {
    coordinator: ProcessId,
    value_proto: Value,
    /// Stop issuing new transactions after this many (None = run forever,
    /// bounded by the simulation horizon).
    max_txns: Option<u64>,
    /// Abandon an operation unanswered for this long and move on to the
    /// next transaction (`None` = wait forever, the fault-free default).
    /// Keeps the closed loop alive when the coordinator crashes.
    op_timeout: Option<SimDuration>,
    next_timer_tag: u64,
    me: Option<ProcessId>,
    slot: ClientSlot,
    records: Vec<TxnRecord>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("coordinator", &self.coordinator)
            .field("issued", &self.slot.issued)
            .field("records", &self.records.len())
            .finish()
    }
}

impl Client {
    /// Creates a client that sends its transactions to `coordinator`,
    /// writing `value_size`-byte payloads, seeded with `seed`.
    pub fn new(
        coordinator: ProcessId,
        source: Box<dyn TxSource + Send>,
        value_size: usize,
        seed: u64,
    ) -> Self {
        Client {
            coordinator,
            value_proto: Value::of_size(value_size),
            max_txns: None,
            op_timeout: None,
            next_timer_tag: 0,
            me: None,
            slot: ClientSlot::new(source, seed),
            records: Vec::new(),
        }
    }

    /// Bounds the number of transactions this client issues.
    pub fn with_max_txns(mut self, max: u64) -> Self {
        self.max_txns = Some(max);
        self
    }

    /// Abandon operations unanswered for `t` (recorded as a crash abort)
    /// instead of blocking the closed loop forever.
    pub fn with_op_timeout(mut self, t: SimDuration) -> Self {
        self.op_timeout = Some(t);
        self
    }

    /// True if a transaction is currently mid-flight.
    pub fn in_flight(&self) -> bool {
        self.slot.current.is_some()
    }

    /// Finished-transaction records collected so far.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Number of transactions issued.
    pub fn issued(&self) -> u64 {
        self.slot.issued
    }

    fn begin_next(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.slot.exhausted(self.max_txns) {
            return;
        }
        let me = self.me.expect("client started");
        let tx = self.slot.open(ctx.now(), |seq| TxId::new(me.0, seq));
        ctx.send(
            self.coordinator,
            Msg::Client {
                tx,
                op: ClientOp::Begin,
            },
        );
        self.arm_op_timer(ctx);
    }

    fn arm_op_timer(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(t) = self.op_timeout else {
            return;
        };
        let tag = self.next_timer_tag;
        self.next_timer_tag += 1;
        let id = ctx.set_timer(t, tag);
        if let Some(r) = self.slot.current.as_mut() {
            r.timer = Some((tag, id));
        }
    }

    fn send_next_op(&mut self, ctx: &mut Context<'_, Msg>) {
        let tx = self.slot.current.as_ref().expect("running").tx;
        let op = self.slot.next_wire_op(ctx.now(), &self.value_proto);
        ctx.send(self.coordinator, Msg::Client { tx, op });
        self.arm_op_timer(ctx);
    }

    /// Per-operation timeout: the coordinator went silent (crashed or
    /// partitioned away). Record the transaction as crash-aborted and move
    /// on, keeping the closed loop alive.
    pub fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        let armed = self
            .slot
            .current
            .as_ref()
            .and_then(|r| r.timer)
            .map(|(t, _)| t);
        if armed != Some(tag) {
            return;
        }
        let rec = self.slot.finish(ctx.now(), false, Some(AbortCause::Crash));
        self.records.push(rec);
        self.begin_next(ctx);
    }
}

impl gdur_sim::Actor for Client {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.me = Some(ctx.self_id());
        self.begin_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
        let Msg::Reply { tx, reply } = msg else {
            return; // clients only understand replies
        };
        let Some(r) = self.slot.current.as_ref() else {
            return;
        };
        if r.tx != tx {
            return; // stale reply from a past transaction
        }
        if let Some((_, id)) = self.slot.current.as_mut().and_then(|r| r.timer.take()) {
            ctx.cancel_timer(id);
        }
        match reply {
            ClientReply::Began | ClientReply::ReadDone { .. } | ClientReply::UpdateDone { .. } => {
                self.send_next_op(ctx);
            }
            ClientReply::Outcome { committed, cause } => {
                let rec = self.slot.finish(ctx.now(), committed, cause);
                self.records.push(rec);
                self.begin_next(ctx);
            }
        }
    }
}
