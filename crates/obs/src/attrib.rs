//! Blame-assigned critical-path latency attribution.
//!
//! [`critical_path`] walks backwards through the causal graph from a
//! transaction's decide point to its begin point, following the chain of
//! handlers that actually produced the decision: the decide handler, the
//! message that triggered it, the handler that sent that message, its
//! certification queue residence, and so on. The walk emits *contiguous*
//! time segments — each ends exactly where the next begins — so the
//! per-transaction segment durations sum EXACTLY to the measured commit
//! latency. Every nanosecond is attributed to exactly one [`Blame`]:
//!
//! - [`Blame::Network`] — wire time plus artificial delay between a
//!   sender's service end and the message's delivery.
//! - [`Blame::Queue`] — residence in a replica's certification queue
//!   between enqueue and the vote handler's service start (the convoy
//!   effect).
//! - [`Blame::Service`] — handler CPU on replicas, including the
//!   cpu-pending gap between a delivery and its service start.
//! - [`Blame::Think`] — the same intervals when they fall on client
//!   actors (closed-loop clients with zero think time contribute ~0).
//! - [`Blame::Straggler`] — unchainable waits: the coordinator sat on a
//!   quorum until the last vote (or a timer) unblocked it, so the gap back
//!   to the previous transaction event is the straggler's fault. The
//!   packed [`labels::TXN_VOTE`] payload ([`crate::vote_parts`]) names the
//!   replica whose vote closed the quorum.
//!
//! [`Attribution`] aggregates the walks of all committed transactions in a
//! measurement window into a per-protocol table; rendering uses integer
//! arithmetic only, so same-seed runs produce byte-identical tables.

use std::collections::BTreeSet;

use gdur_sim::{trigger, ObsEvent, ProcessId, SimTime};

use crate::event::labels;
use crate::span::CausalIndex;

/// Who a critical-path segment blames. See the module docs for the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Blame {
    /// Wire time + artificial delay of a followed message hop.
    Network,
    /// Quorum/unchainable wait ended by the last vote or a timer.
    Straggler,
    /// Certification-queue residence on a replica.
    Queue,
    /// Handler service (and cpu-pending) on a replica.
    Service,
    /// Handler service (and cpu-pending) on a client actor.
    Think,
}

impl Blame {
    /// All blames, in table order.
    pub const ALL: [Blame; 5] = [
        Blame::Network,
        Blame::Straggler,
        Blame::Queue,
        Blame::Service,
        Blame::Think,
    ];

    /// Stable index into per-blame arrays.
    pub fn index(self) -> usize {
        match self {
            Blame::Network => 0,
            Blame::Straggler => 1,
            Blame::Queue => 2,
            Blame::Service => 3,
            Blame::Think => 4,
        }
    }

    /// Short stable label for tables and CSV.
    pub fn label(self) -> &'static str {
        match self {
            Blame::Network => "network",
            Blame::Straggler => "straggler",
            Blame::Queue => "cert-queue",
            Blame::Service => "service",
            Blame::Think => "client-think",
        }
    }
}

/// One contiguous interval of a transaction's critical path.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Interval start.
    pub from: SimTime,
    /// Interval end (`> from`; zero-width segments are never emitted).
    pub to: SimTime,
    /// Who this interval blames.
    pub blame: Blame,
    /// What the walk was doing (`"service"`, `"hop"`, `"cpu-pending"`,
    /// `"cert-queue"`, `"quorum-wait"`); diagnostic only.
    pub note: &'static str,
}

impl Segment {
    /// Segment duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.to.saturating_since(self.from).as_nanos()
    }
}

/// The blame-assigned critical path of one committed transaction.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The transaction's code ([`crate::tx_code`]).
    pub tx: u64,
    /// Measured begin → decide latency in nanoseconds.
    pub latency_ns: u64,
    /// Contiguous segments in chronological order; their durations sum to
    /// exactly `latency_ns`.
    pub segments: Vec<Segment>,
    /// The replica whose vote closed the quorum (from the decide handler's
    /// triggering message), if the decision was message-triggered.
    pub last_voter: Option<ProcessId>,
}

impl CriticalPath {
    /// Sum of all segment durations — equals [`CriticalPath::latency_ns`]
    /// by construction (the walk emits contiguous, clamped segments).
    pub fn attributed_ns(&self) -> u64 {
        self.segments.iter().map(Segment::duration_ns).sum()
    }

    /// Per-blame nanoseconds, indexed by [`Blame::index`].
    pub fn blame_ns(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for s in &self.segments {
            out[s.blame.index()] += s.duration_ns();
        }
        out
    }
}

/// Walks transaction `tx`'s critical path from decide back to begin.
///
/// Returns `None` when the transaction did not both begin and decide inside
/// the trace, or when the trace carries no causal events (a plain v1 trace
/// has no handler brackets to follow).
///
/// `clients` names the client actors: service time on them is blamed
/// [`Blame::Think`] instead of [`Blame::Service`].
pub fn critical_path(
    events: &[ObsEvent],
    ix: &CausalIndex,
    clients: &BTreeSet<ProcessId>,
    tx: u64,
) -> Option<CriticalPath> {
    let pts = ix.tx_points.get(&tx)?;
    let mut begin: Option<SimTime> = None;
    let mut decide: Option<(usize, SimTime)> = None;
    for &pi in pts {
        if let ObsEvent::Point { at, label, .. } = events[pi] {
            match label {
                labels::TXN_BEGIN if begin.is_none() => begin = Some(at),
                labels::TXN_DECIDE if decide.is_none() => decide = Some((pi, at)),
                _ => {}
            }
        }
    }
    let begin = begin?;
    let (d_idx, d_at) = decide?;
    let dh = ix.emitter_of(d_idx)?;

    // The decide handler's trigger names the vote that closed the quorum —
    // but only when a *replica* sent it (a decision triggered straight by a
    // client's submit message is a fast local decide, not a quorum close).
    let last_voter = match ix.handlers[dh].trigger {
        trigger::MSG => ix
            .sends
            .get(&ix.handlers[dh].mid)
            .map(|s| s.from)
            .filter(|f| !clients.contains(f)),
        _ => None,
    };

    // Backward walk. Invariants: `cursor >= handlers[h].start` at every
    // loop top, and `h` strictly decreases each iteration (each rule moves
    // to an earlier handler in the single-threaded event stream), so the
    // walk terminates. Segments are emitted back-to-back — each new
    // segment ends where the previous one started — which is what makes
    // the attributed sum exact.
    let mut segs: Vec<Segment> = Vec::new();
    let mut cursor = d_at;
    let mut h = dh;
    loop {
        let hr = &ix.handlers[h];
        let svc = if clients.contains(&hr.actor) {
            Blame::Think
        } else {
            Blame::Service
        };
        if hr.start <= begin {
            push(&mut segs, begin, begin, cursor, svc, "service");
            break;
        }
        // The tail of this handler's service, up to wherever the forward
        // chain resumed.
        push(&mut segs, begin, hr.start, cursor, svc, "service");
        cursor = hr.start;

        // Rule 1 — certification queue: if this handler cast the tx's
        // vote, charge the gap back to the enqueue handler as queue
        // residence (the dequeue may have happened in a later batch or a
        // timer poll; the enqueue bracket is the causal anchor either way).
        if let Some(e) = vote_enqueue_handler(events, ix, tx, h) {
            push(
                &mut segs,
                begin,
                ix.handlers[e].end,
                cursor,
                Blame::Queue,
                "cert-queue",
            );
            cursor = ix.handlers[e].end;
            h = e;
            continue;
        }

        // Rule 2 — follow the triggering message: delivery → service start
        // is cpu-pending on the destination, sender service end → delivery
        // is the network hop.
        if hr.trigger == trigger::MSG {
            if let Some(s) = ix.sends.get(&hr.mid) {
                if let (Some(em), Some(d)) = (s.emitter, s.delivered) {
                    if em < h {
                        push(&mut segs, begin, d, cursor, svc, "cpu-pending");
                        let em_end = ix.handlers[em].end;
                        push(
                            &mut segs,
                            begin,
                            em_end,
                            d.min(cursor),
                            Blame::Network,
                            "hop",
                        );
                        cursor = em_end;
                        h = em;
                        continue;
                    }
                }
            }
        }

        // Rule 3 — re-anchor: the trigger is unchainable (a timer poll, a
        // start job, or a message whose chain left the trace window). The
        // handler was *unblocked* here after sitting on partial state, so
        // the gap back to the transaction's latest earlier event is the
        // straggler's fault.
        match latest_tx_point_before(events, ix, tx, cursor, h) {
            Some((p_at, ph)) => {
                let blame = if clients.contains(&ix.handlers[h].actor) {
                    Blame::Think
                } else {
                    Blame::Straggler
                };
                push(&mut segs, begin, p_at, cursor, blame, "quorum-wait");
                cursor = p_at;
                h = ph;
            }
            None => {
                push(
                    &mut segs,
                    begin,
                    begin,
                    cursor,
                    Blame::Straggler,
                    "quorum-wait",
                );
                break;
            }
        }
    }
    segs.reverse();
    Some(CriticalPath {
        tx,
        latency_ns: d_at.saturating_since(begin).as_nanos(),
        segments: segs,
        last_voter,
    })
}

/// Emits `[from, to]` clamped to start no earlier than `begin`; zero-width
/// segments are skipped (contiguity is preserved because the caller always
/// continues from `from`).
fn push(
    segs: &mut Vec<Segment>,
    begin: SimTime,
    from: SimTime,
    to: SimTime,
    blame: Blame,
    note: &'static str,
) {
    let from = from.max(begin);
    let to = to.max(begin);
    if to > from {
        segs.push(Segment {
            from,
            to,
            blame,
            note,
        });
    }
}

/// If handler `h` cast `tx`'s vote, the handler that enqueued `tx` into
/// the same replica's certification queue — the backward jump target of
/// the cert-queue rule.
fn vote_enqueue_handler(events: &[ObsEvent], ix: &CausalIndex, tx: u64, h: usize) -> Option<usize> {
    let hr = &ix.handlers[h];
    let voted = hr.points.iter().any(|&pi| {
        matches!(events[pi], ObsEvent::Point { label, tx: ptx, .. }
            if label == labels::TXN_VOTE && ptx == tx)
    });
    if !voted {
        return None;
    }
    for &pi in ix.tx_points.get(&tx)? {
        if let ObsEvent::Point { label, actor, .. } = events[pi] {
            if label == labels::CERT_ENQUEUE && actor == hr.actor {
                let e = ix.emitter_of(pi)?;
                if e != h && e < h && ix.handlers[e].end <= hr.start {
                    return Some(e);
                }
            }
        }
    }
    None
}

/// The latest `tx`-scoped point strictly before `cursor` emitted by a
/// handler earlier than `h` (max time, ties broken towards the later event)
/// — the re-anchor target when the chain breaks.
fn latest_tx_point_before(
    events: &[ObsEvent],
    ix: &CausalIndex,
    tx: u64,
    cursor: SimTime,
    h: usize,
) -> Option<(SimTime, usize)> {
    let mut best: Option<(SimTime, usize)> = None;
    for &pi in ix.tx_points.get(&tx)? {
        let ObsEvent::Point { at, .. } = events[pi] else {
            continue;
        };
        if at >= cursor {
            continue;
        }
        let Some(ph) = ix.emitter_of(pi) else {
            continue;
        };
        if ph >= h {
            continue;
        }
        if best.is_none_or(|(b_at, _)| at >= b_at) {
            best = Some((at, ph));
        }
    }
    best
}

/// Aggregated critical-path attribution over a measurement window.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Committed transactions attributed.
    pub txns: u64,
    /// Total critical-path (= commit latency) nanoseconds.
    pub total_ns: u64,
    /// Per-blame nanoseconds, indexed by [`Blame::index`].
    pub blame_ns: [u64; 5],
    /// How often each replica's vote closed a quorum (last-voter counts).
    pub stragglers: std::collections::BTreeMap<u32, u64>,
}

impl Attribution {
    /// Folds one transaction's walk into the aggregate.
    pub fn add(&mut self, cp: &CriticalPath) {
        self.txns += 1;
        self.total_ns += cp.latency_ns;
        for (acc, add) in self.blame_ns.iter_mut().zip(cp.blame_ns()) {
            *acc += add;
        }
        if let Some(v) = cp.last_voter {
            *self.stragglers.entry(v.0).or_insert(0) += 1;
        }
    }

    /// Walks every transaction that committed (`txn.decide` with value 1)
    /// at or after `window_start` and aggregates the attributions.
    pub fn collect(
        events: &[ObsEvent],
        ix: &CausalIndex,
        clients: &BTreeSet<ProcessId>,
        window_start: SimTime,
    ) -> Attribution {
        let mut out = Attribution::default();
        for (&tx, pts) in &ix.tx_points {
            let committed_in_window = pts.iter().any(|&pi| {
                matches!(events[pi], ObsEvent::Point { at, label, value, .. }
                    if label == labels::TXN_DECIDE && value == 1 && at >= window_start)
            });
            if !committed_in_window {
                continue;
            }
            if let Some(cp) = critical_path(events, ix, clients, tx) {
                out.add(&cp);
            }
        }
        out
    }

    /// Per-blame share in basis points (1/100th of a percent); integer
    /// math only, so tables are byte-stable across same-seed runs.
    pub fn share_bp(&self, b: Blame) -> u64 {
        (self.blame_ns[b.index()] * 10_000)
            .checked_div(self.total_ns)
            .unwrap_or(0)
    }

    /// Top `n` last-voter replicas, by count descending then pid ascending.
    pub fn top_stragglers(&self, n: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.stragglers.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Renders per-protocol attribution tables as fixed-width text. Integer
/// arithmetic only: same-seed runs render byte-identical tables.
pub fn render_attribution_text(rows: &[(String, Attribution)]) -> String {
    let mut out = String::new();
    out.push_str("critical-path latency attribution (committed txns)\n");
    for (name, a) in rows {
        out.push_str(&format!(
            "\nprotocol {name}: txns={} total_ns={}\n",
            a.txns, a.total_ns
        ));
        for b in Blame::ALL {
            let bp = a.share_bp(b);
            out.push_str(&format!(
                "  {:<12} {:>14} ns  {:>3}.{:02}%\n",
                b.label(),
                a.blame_ns[b.index()],
                bp / 100,
                bp % 100
            ));
        }
        let attributed: u64 = a.blame_ns.iter().sum();
        out.push_str(&format!("  {:<12} {:>14} ns\n", "attributed", attributed));
        let top = a.top_stragglers(3);
        if !top.is_empty() {
            out.push_str("  last-voter  ");
            for (i, (pid, n)) in top.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("p{pid} x{n}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the same tables as CSV (`protocol,blame,ns,share_bp`).
pub fn render_attribution_csv(rows: &[(String, Attribution)]) -> String {
    let mut out = String::from("protocol,blame,ns,share_bp\n");
    for (name, a) in rows {
        for b in Blame::ALL {
            out.push_str(&format!(
                "{name},{},{},{}\n",
                b.label(),
                a.blame_ns[b.index()],
                a.share_bp(b)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::vote_value;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Coordinator p0 begins+submits (handler 0), sends cert to p1;
    /// p1 enqueues (handler 1); a later timer poll dequeues and votes
    /// (handler 2), sending the vote back; p0 decides (handler 3).
    fn stream() -> Vec<ObsEvent> {
        vec![
            ObsEvent::HandleStart {
                at: t(0),
                actor: p(0),
                mid: 100,
                trigger: trigger::MSG,
            },
            ObsEvent::Point {
                at: t(0),
                actor: p(0),
                label: labels::TXN_BEGIN,
                tx: 7,
                value: 0,
            },
            ObsEvent::Point {
                at: t(0),
                actor: p(0),
                label: labels::TXN_SUBMIT,
                tx: 7,
                value: 1,
            },
            ObsEvent::Send {
                at: t(20),
                mid: 1,
                from: p(0),
                to: p(1),
                label: "cert",
                bytes: 64,
            },
            ObsEvent::HandleEnd {
                at: t(20),
                actor: p(0),
                mid: 100,
            },
            ObsEvent::Deliver {
                at: t(120),
                mid: 1,
                to: p(1),
            },
            ObsEvent::HandleStart {
                at: t(120),
                actor: p(1),
                mid: 1,
                trigger: trigger::MSG,
            },
            ObsEvent::Point {
                at: t(120),
                actor: p(1),
                label: labels::CERT_ENQUEUE,
                tx: 7,
                value: 1,
            },
            ObsEvent::HandleEnd {
                at: t(130),
                actor: p(1),
                mid: 1,
            },
            ObsEvent::HandleStart {
                at: t(200),
                actor: p(1),
                mid: 2,
                trigger: trigger::TIMER,
            },
            ObsEvent::Point {
                at: t(200),
                actor: p(1),
                label: labels::CERT_DEQUEUE,
                tx: 7,
                value: 0,
            },
            ObsEvent::Point {
                at: t(200),
                actor: p(1),
                label: labels::TXN_VOTE,
                tx: 7,
                value: vote_value(p(1), true),
            },
            ObsEvent::Send {
                at: t(220),
                mid: 3,
                from: p(1),
                to: p(0),
                label: "vote",
                bytes: 32,
            },
            ObsEvent::HandleEnd {
                at: t(220),
                actor: p(1),
                mid: 2,
            },
            ObsEvent::Deliver {
                at: t(320),
                mid: 3,
                to: p(0),
            },
            ObsEvent::HandleStart {
                at: t(320),
                actor: p(0),
                mid: 3,
                trigger: trigger::MSG,
            },
            ObsEvent::Point {
                at: t(330),
                actor: p(0),
                label: labels::TXN_DECIDE,
                tx: 7,
                value: 1,
            },
            ObsEvent::HandleEnd {
                at: t(340),
                actor: p(0),
                mid: 3,
            },
        ]
    }

    #[test]
    fn walk_attributes_every_nanosecond_exactly_once() {
        let events = stream();
        let ix = CausalIndex::build(&events);
        let clients = BTreeSet::new();
        let cp = critical_path(&events, &ix, &clients, 7).expect("tx 7 walks");
        assert_eq!(cp.latency_ns, 330);
        assert_eq!(cp.attributed_ns(), cp.latency_ns, "exact attribution");
        // Contiguity: each segment starts where the previous one ended.
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].to, w[1].from, "segments are contiguous");
        }
        let b = cp.blame_ns();
        assert_eq!(b[Blame::Network.index()], 200, "two 100ns hops");
        assert_eq!(b[Blame::Queue.index()], 70, "130→200 queue residence");
        assert_eq!(b[Blame::Service.index()], 60, "20 + 10 + 20 + 10 service");
        assert_eq!(b[Blame::Straggler.index()], 0);
        assert_eq!(b[Blame::Think.index()], 0);
        assert_eq!(cp.last_voter, Some(p(1)));
    }

    #[test]
    fn timer_decides_reanchor_as_straggler_wait() {
        let events = vec![
            ObsEvent::HandleStart {
                at: t(0),
                actor: p(0),
                mid: 100,
                trigger: trigger::START,
            },
            ObsEvent::Point {
                at: t(0),
                actor: p(0),
                label: labels::TXN_BEGIN,
                tx: 9,
                value: 0,
            },
            ObsEvent::HandleEnd {
                at: t(10),
                actor: p(0),
                mid: 100,
            },
            ObsEvent::HandleStart {
                at: t(500),
                actor: p(0),
                mid: 101,
                trigger: trigger::TIMER,
            },
            ObsEvent::Point {
                at: t(510),
                actor: p(0),
                label: labels::TXN_DECIDE,
                tx: 9,
                value: 1,
            },
            ObsEvent::HandleEnd {
                at: t(520),
                actor: p(0),
                mid: 101,
            },
        ];
        let ix = CausalIndex::build(&events);
        let cp = critical_path(&events, &ix, &BTreeSet::new(), 9).expect("tx 9 walks");
        assert_eq!(cp.latency_ns, 510);
        assert_eq!(cp.attributed_ns(), 510);
        let b = cp.blame_ns();
        assert_eq!(b[Blame::Straggler.index()], 500, "0→500 unchainable wait");
        assert_eq!(b[Blame::Service.index()], 10);
        assert_eq!(cp.last_voter, None);
    }

    #[test]
    fn attribution_aggregates_and_renders_deterministically() {
        let events = stream();
        let ix = CausalIndex::build(&events);
        let a = Attribution::collect(&events, &ix, &BTreeSet::new(), SimTime::ZERO);
        assert_eq!(a.txns, 1);
        assert_eq!(a.total_ns, 330);
        assert_eq!(a.blame_ns.iter().sum::<u64>(), 330);
        assert_eq!(a.top_stragglers(3), vec![(1, 1)]);
        let rows = vec![("test".to_string(), a)];
        let text = render_attribution_text(&rows);
        assert!(text.contains("protocol test: txns=1 total_ns=330"));
        assert!(text.contains("last-voter  p1 x1"));
        let csv = render_attribution_csv(&rows);
        assert!(csv.starts_with("protocol,blame,ns,share_bp\n"));
        assert!(csv.contains("test,network,200,6060\n"));
        // Same events → byte-identical render.
        let ix2 = CausalIndex::build(&events);
        let a2 = Attribution::collect(&events, &ix2, &BTreeSet::new(), SimTime::ZERO);
        assert_eq!(render_attribution_text(&[("test".to_string(), a2)]), text);
    }

    #[test]
    fn window_excludes_warmup_commits() {
        let events = stream();
        let ix = CausalIndex::build(&events);
        let a = Attribution::collect(&events, &ix, &BTreeSet::new(), t(1_000));
        assert_eq!(a.txns, 0, "decide at 330 is before the window");
    }

    #[test]
    fn client_service_is_think_time() {
        let events = stream();
        let ix = CausalIndex::build(&events);
        let clients: BTreeSet<ProcessId> = [p(0)].into_iter().collect();
        let cp = critical_path(&events, &ix, &clients, 7).expect("tx 7 walks");
        let b = cp.blame_ns();
        assert_eq!(b[Blame::Think.index()], 30, "p0 intervals become think");
        assert_eq!(b[Blame::Service.index()], 30, "p1 stays service");
        assert_eq!(cp.attributed_ns(), 330);
    }
}
