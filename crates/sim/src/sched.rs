//! Kernel-level schedule-exploration hook.
//!
//! By default the kernel pops events in strict `(time, seq)` order — one
//! schedule per seed. A [`Scheduler`] attached via
//! [`Simulation::attach_scheduler`](crate::Simulation::attach_scheduler)
//! gets to reorder *co-enabled* arrivals instead: whenever the next event is
//! a message/timer/start arrival, the kernel collects every further arrival
//! within [`Scheduler::window`] of it (stopping at the first dispatch or
//! fault event, which are never reordered) and asks the scheduler which one
//! to run first.
//!
//! Choosing a candidate whose time is *later* than another's models bounded
//! network/CPU jitter: the passed-over earlier candidates are re-queued with
//! their arrival instants bumped up to the chosen event's time, so virtual
//! time stays monotone and every explored schedule is a legal execution of
//! the same system under a slightly different latency assignment. With a
//! zero window only same-instant arrivals are co-enabled and the degenerate
//! choice "index 0" reproduces the default `(time, seq)` order exactly.
//!
//! The hook is dormant when no scheduler is attached: the dispatch loop
//! takes the historical path untouched, so default runs stay bit-identical.
//! Model-checking policy (DPOR pruning, decision vectors, random walks)
//! lives in `gdur-analysis`, outside the kernel.

use crate::actor::ProcessId;
use crate::time::{SimDuration, SimTime};

/// What a co-enabled candidate event would do, payload-free.
///
/// The kernel never exposes message bodies to a scheduler — reordering
/// decisions may depend only on shape (target actor, source, timer tag),
/// which is what keeps the commutativity argument behind DPOR-style
/// pruning honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// The actor's `on_start` job.
    Start,
    /// A message delivery from `from`.
    Message {
        /// The sending actor.
        from: ProcessId,
    },
    /// A timer firing with the given tag.
    Timer {
        /// The actor-chosen timer tag.
        tag: u64,
    },
    /// The actor's `on_restart` recovery job.
    Restart,
}

/// One co-enabled arrival offered to [`Scheduler::choose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The arrival's currently scheduled instant.
    pub time: SimTime,
    /// Kernel scheduling sequence number (the default tie-break key).
    pub seq: u64,
    /// The destination actor.
    pub to: ProcessId,
    /// What the arrival is.
    pub kind: CandidateKind,
    /// True if running this arrival is a behavioral no-op — a canceled
    /// timer draining through the queue, or any arrival addressed to a
    /// crashed actor. Inert arrivals commute with *everything* (they only
    /// retire kernel bookkeeping), so schedule explorers should never
    /// branch on their order.
    pub inert: bool,
}

/// Chooses among co-enabled arrivals; attached with
/// [`Simulation::attach_scheduler`](crate::Simulation::attach_scheduler).
///
/// `Send` is required so a `Simulation` stays `Send` whether or not a
/// scheduler is attached (mirroring [`ObsSink`](crate::ObsSink)).
pub trait Scheduler: Send {
    /// Width of the co-enabled window: arrivals within `window()` of the
    /// earliest queued event are offered together. `ZERO` restricts choice
    /// to exact virtual-instant ties.
    fn window(&self) -> SimDuration;

    /// Picks the index (into `candidates`) of the arrival to run next.
    ///
    /// `candidates` is nonempty and sorted by `(time, seq)`; index 0 is
    /// what the default kernel would run. Called only when there are at
    /// least two candidates. Must return a valid index; must not panic.
    fn choose(&mut self, now: SimTime, candidates: &[Candidate]) -> usize;
}

/// The identity scheduler: always picks index 0 with a zero window,
/// reproducing the default `(time, seq)` order event-for-event. Exists to
/// test that attaching a scheduler is itself perturbation-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn window(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn choose(&mut self, _now: SimTime, _candidates: &[Candidate]) -> usize {
        0
    }
}
