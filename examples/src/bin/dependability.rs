//! Dependability (§5.3, §8.5): crash a replica mid-run and contrast the
//! blocking behaviour of 2PC with quorum-based group communication in a
//! disaster-tolerant deployment.
//!
//! Under 2PC every replica of every certified object must vote, so a
//! crashed replica stalls all transactions touching its partitions until
//! it recovers. Under quorum-based group communication (uniform AB-Cast
//! with majority delivery, one affirmative vote per object) the surviving
//! replica of each partition keeps the system live. Genuine AM-Cast would
//! need perfect failure detection to exclude the crashed destination
//! (§5.3), which we deliberately do not fake.
//!
//! ```text
//! cargo run --release -p gdur-examples --bin dependability
//! ```

use gdur_core::{Cluster, ClusterConfig, ProtocolSpec};
use gdur_sim::SimDuration;
use gdur_store::Placement;
use gdur_workload::{WorkloadSpec, YcsbSource};

fn run(spec: ProtocolSpec, crash: bool) -> (usize, usize) {
    let name = spec.name;
    let mut cfg = ClusterConfig::small(spec, 3);
    cfg.placement = Placement::disaster_tolerant(3);
    cfg.keys_per_partition = 1_000;
    cfg.clients_per_site = 4;
    cfg.max_txns_per_client = None;
    cfg.record_history = false;
    let total_keys = cfg.keys_per_partition * 3;
    let mut cluster = Cluster::build(cfg, move |_, site| {
        Box::new(YcsbSource::new(
            WorkloadSpec::a(),
            total_keys,
            3,
            site.0 as u64 % 3,
            0.5,
        ))
    });
    cluster.run_for(SimDuration::from_secs(2));
    let before = cluster.records().len();
    if crash {
        let victim = cluster.replica_pids()[2];
        cluster.sim_mut().crash(victim);
        println!("{name:<12}: crashed the site-2 replica at t=2s");
    }
    cluster.run_for(SimDuration::from_secs(4));
    let after = cluster.records().len();
    (before, after - before)
}

fn main() {
    println!("disaster-tolerant deployment, 3 sites, replica of site 2 crashes\n");
    for spec in [gdur_protocols::p_store_ab(), gdur_protocols::p_store_2pc()] {
        let name = spec.name;
        let (_, healthy) = run(spec.clone(), false);
        let (_, after_crash) = run(spec, true);
        let retained = 100.0 * after_crash as f64 / healthy as f64;
        println!(
            "{name:<12}: {healthy:>6} decisions healthy, {after_crash:>6} after crash \
             ({retained:.0}% retained)\n"
        );
        if name == "P-Store-AB" {
            assert!(
                retained > 25.0,
                "quorum commitment should survive one crash"
            );
        } else {
            assert!(retained < 25.0, "2PC should block on the crashed replica");
        }
    }
    println!(
        "AM-Cast voting needs one live replica per object: throughput dips but \
         survives.\n2PC needs every replica's vote: transactions touching the \
         crashed site's\npartitions block until recovery — the §5.3 trade-off."
    );
}
