//! The wire protocol of the middleware: everything replicas and clients
//! exchange, with realistic size accounting.

use std::sync::Arc;

use gdur_gc::GcMsg;
use gdur_obs::AbortCause;
use gdur_sim::{ProcessId, WireSize};
use gdur_store::{Key, TxId, Value};
use gdur_versioning::{Stamp, VersionVec};

use crate::txn::{ReadEntry, Snapshot, WriteEntry};

/// Client → coordinator operations (the begin/CRUD/commit interface of
/// Figure 1).
#[derive(Debug, Clone)]
pub enum ClientOp {
    /// Start a transaction.
    Begin,
    /// Read a key.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Read-modify-write a key with a new value.
    Update {
        /// Key to update.
        key: Key,
        /// After-value to buffer.
        value: Value,
    },
    /// Submit the transaction for termination.
    Commit,
}

/// Coordinator → client replies.
#[derive(Debug, Clone)]
pub enum ClientReply {
    /// The transaction is executing.
    Began,
    /// A read completed (the value read, empty if the key is unknown).
    ReadDone {
        /// Key that was read.
        key: Key,
        /// Value observed.
        value: Value,
    },
    /// An update's read-modify-write completed.
    UpdateDone {
        /// Key that was updated.
        key: Key,
    },
    /// The transaction terminated.
    Outcome {
        /// True if the transaction committed.
        committed: bool,
        /// Why it aborted (`None` iff `committed`).
        cause: Option<AbortCause>,
    },
}

/// The termination record `xcast` to the replicas of
/// `certifying_obj(T)` (Algorithm 2, line 15).
///
/// Read/write sets are shared via [`Arc`] so that fanning the payload out
/// to many replicas clones pointers, not buffers — mirroring scatter-gather
/// marshaling in the Java original.
#[derive(Debug, Clone)]
pub struct TermPayload {
    /// The terminating transaction.
    pub tx: TxId,
    /// Its coordinator (where votes/decisions flow back).
    pub coord: ProcessId,
    /// True if the transaction wrote nothing.
    pub read_only: bool,
    /// Read set with observed per-key versions.
    pub rs: Arc<Vec<ReadEntry>>,
    /// Write buffer with after-values and base versions.
    pub ws: Arc<Vec<WriteEntry>>,
    /// Dependency vector for commit stamping (dimension = mechanism dim),
    /// `Arc`-shared so the whole payload clones in O(1) — it is copied
    /// once per destination by every `xcast` primitive and again at each
    /// certification/voting step.
    pub dep: Arc<VersionVec>,
    /// Cached wire size; the shared sets are immutable after construction,
    /// and the size is re-read on every fan-out copy, send-cost charge,
    /// and kernel traffic account.
    wire: u32,
}

impl TermPayload {
    /// Assembles a payload, fixing its wire size once (the `Arc`-shared
    /// sets never change afterwards).
    pub fn new(
        tx: TxId,
        coord: ProcessId,
        read_only: bool,
        rs: Arc<Vec<ReadEntry>>,
        ws: Arc<Vec<WriteEntry>>,
        dep: Arc<VersionVec>,
    ) -> Self {
        let ws_bytes: usize = ws.iter().map(|w| 16 + w.value.len()).sum();
        let wire = (32 + rs.len() * 16 + ws_bytes + dep.wire_size()) as u32;
        TermPayload {
            tx,
            coord,
            read_only,
            rs,
            ws,
            dep,
            wire,
        }
    }
}

impl WireSize for TermPayload {
    fn wire_size(&self) -> usize {
        self.wire as usize
    }
}

/// One version shipped during catch-up state transfer: the fields of a
/// [`gdur_persist::LogRecord::Install`] the recovering replica re-applies.
#[derive(Debug, Clone)]
pub struct CatchupInstall {
    /// Key written.
    pub key: Key,
    /// Per-key sequence installed.
    pub seq: u64,
    /// Stamp of the version.
    pub stamp: Stamp,
    /// Writing transaction.
    pub writer: TxId,
    /// The after-value.
    pub value: Value,
}

impl CatchupInstall {
    /// Approximate on-the-wire size of this entry.
    pub fn wire_size(&self) -> usize {
        24 + self.stamp.wire_size() + self.value.len()
    }
}

/// All messages of the simulated deployment.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client operation addressed to its coordinator.
    Client {
        /// Transaction the operation belongs to.
        tx: TxId,
        /// The operation.
        op: ClientOp,
    },
    /// Coordinator reply to a client.
    Reply {
        /// Transaction the reply belongs to.
        tx: TxId,
        /// The reply.
        reply: ClientReply,
    },
    /// Remote read request (Algorithm 1, line 13): carries the snapshot
    /// context so the serving replica can run `choose` locally.
    ReadReq {
        /// Reading transaction.
        tx: TxId,
        /// Key to read.
        key: Key,
        /// The transaction's snapshot context.
        snap: Snapshot,
    },
    /// Remote read reply (Algorithm 1, line 14).
    ReadRep {
        /// Reading transaction.
        tx: TxId,
        /// Key that was read.
        key: Key,
        /// Value of the chosen version.
        value: Value,
        /// Per-key sequence of the chosen version.
        seq: u64,
        /// Stamp of the chosen version.
        stamp: Stamp,
        /// Updated snapshot context (greedy pins taken at the server).
        snap: Snapshot,
    },
    /// Group-communication traffic carrying termination payloads.
    Gc(GcMsg<TermPayload>),
    /// A certification vote (Algorithms 3–4).
    Vote {
        /// Transaction voted on.
        tx: TxId,
        /// True = certification succeeded at the voter.
        yes: bool,
        /// Commit-clock slots reserved by the voter for its locally hosted
        /// written partitions (vector mechanisms under voting commitment):
        /// the coordinator merges every voter's reservations into one
        /// complete commit vector, so all installs of the transaction are
        /// admitted or rejected atomically by any snapshot.
        clocks: Vec<(u32, u64)>,
    },
    /// A decision announcement (coordinator → participants).
    Decide {
        /// Decided transaction.
        tx: TxId,
        /// True = commit.
        commit: bool,
        /// Payload for appliers that never delivered it (2PC replicas of
        /// `ws` outside the certifying set never occur in our rules, so
        /// this stays `None`; kept for protocol extensions).
        payload: Option<TermPayload>,
        /// The merged vote-clock reservations of every participant — the
        /// commit-vector entries all installs of this transaction carry.
        clocks: Vec<(u32, u64)>,
    },
    /// Paxos Commit: coordinator asks acceptors to persist the decision.
    PaxosAccept {
        /// Decided transaction.
        tx: TxId,
        /// The decision being replicated.
        commit: bool,
    },
    /// Paxos Commit: acceptor acknowledgment.
    PaxosAccepted {
        /// Decided transaction.
        tx: TxId,
        /// The acknowledged decision.
        commit: bool,
    },
    /// Background stamp propagation (`post_commit` of Walter/S-DUR): the
    /// primary of partition `partition` advanced to `seq`.
    Propagate {
        /// Partition whose clock advanced.
        partition: u32,
        /// New partition clock value.
        seq: u64,
    },
    /// Catch-up state transfer (§5.3 recovery): a restarted replica asks a
    /// peer for the installs of its hosted partitions, paginated from the
    /// peer's log record index `from` in pages of at most `max` records.
    CatchupReq {
        /// Partitions the requester hosts and wants caught up.
        partitions: Vec<u32>,
        /// Resume index into the peer's log (0 = from the beginning).
        from: u64,
        /// Page size bound (records per reply).
        max: u32,
    },
    /// One page of catch-up state: the installs and decisions of the
    /// requested partitions. `next = None` marks the final page, which also
    /// carries the peer's per-partition visibility `frontier` so the
    /// requester can re-open its snapshot clock.
    CatchupRep {
        /// Install records of the requested partitions, in log order.
        installs: Vec<CatchupInstall>,
        /// Commit/abort decisions logged by the peer.
        decisions: Vec<(TxId, bool)>,
        /// Resume index for the next page; `None` = transfer complete.
        next: Option<u64>,
        /// Peer's knowledge entries for the requested partitions (final
        /// page only; empty otherwise).
        frontier: Vec<(u32, u64)>,
    },
}

impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        const HDR: usize = 16;
        match self {
            Msg::Client { op, .. } => {
                HDR + match op {
                    ClientOp::Begin | ClientOp::Commit => 8,
                    ClientOp::Read { .. } => 16,
                    ClientOp::Update { value, .. } => 16 + value.len(),
                }
            }
            Msg::Reply { reply, .. } => {
                HDR + match reply {
                    ClientReply::ReadDone { value, .. } => 16 + value.len(),
                    _ => 8,
                }
            }
            Msg::ReadReq { snap, .. } => HDR + 16 + snap.wire_size(),
            Msg::ReadRep {
                value, stamp, snap, ..
            } => HDR + 24 + value.len() + stamp.wire_size() + snap.wire_size(),
            Msg::Gc(m) => HDR + m.wire_size(),
            Msg::Vote { clocks, .. } => HDR + 16 + 12 * clocks.len(),
            Msg::Decide {
                payload, clocks, ..
            } => {
                HDR + 16 + 12 * clocks.len() + payload.as_ref().map(|p| p.wire_size()).unwrap_or(0)
            }
            Msg::PaxosAccept { .. } | Msg::PaxosAccepted { .. } => HDR + 16,
            Msg::Propagate { .. } => HDR + 16,
            Msg::CatchupReq { partitions, .. } => HDR + 12 + 4 * partitions.len(),
            Msg::CatchupRep {
                installs,
                decisions,
                frontier,
                ..
            } => {
                HDR + 9
                    + installs
                        .iter()
                        .map(CatchupInstall::wire_size)
                        .sum::<usize>()
                    + 17 * decisions.len()
                    + 12 * frontier.len()
            }
        }
    }

    fn wire_label(&self) -> &'static str {
        match self {
            Msg::Client { .. } => "client",
            Msg::Reply { .. } => "reply",
            Msg::ReadReq { .. } => "read_req",
            Msg::ReadRep { .. } => "read_rep",
            Msg::Gc(m) => m.wire_label(),
            Msg::Vote { .. } => "vote",
            Msg::Decide { .. } => "decide",
            Msg::PaxosAccept { .. } => "paxos_accept",
            Msg::PaxosAccepted { .. } => "paxos_accepted",
            Msg::Propagate { .. } => "propagate",
            Msg::CatchupReq { .. } => "catchup_req",
            Msg::CatchupRep { .. } => "catchup_rep",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_size_scales_with_sets_and_values() {
        let empty = TermPayload::new(
            TxId::new(0, 1),
            ProcessId(0),
            true,
            Arc::new(vec![]),
            Arc::new(vec![]),
            Arc::new(VersionVec::zero(0)),
        );
        let loaded = TermPayload::new(
            TxId::new(0, 1),
            ProcessId(0),
            false,
            Arc::new(vec![ReadEntry {
                key: Key(1),
                seq: 0,
            }]),
            Arc::new(vec![WriteEntry {
                key: Key(2),
                value: Value::of_size(1024),
                base_seq: 0,
            }]),
            Arc::new(VersionVec::zero(4)),
        );
        assert!(loaded.wire_size() > empty.wire_size() + 1024);
    }

    #[test]
    fn update_message_carries_payload_size() {
        let m = Msg::Client {
            tx: TxId::new(0, 1),
            op: ClientOp::Update {
                key: Key(1),
                value: Value::of_size(1024),
            },
        };
        assert!(m.wire_size() >= 1024);
        let b = Msg::Client {
            tx: TxId::new(0, 1),
            op: ClientOp::Begin,
        };
        assert!(b.wire_size() < 64);
    }

    #[test]
    fn snapshot_metadata_inflates_read_requests() {
        let lean = Msg::ReadReq {
            tx: TxId::new(0, 1),
            key: Key(1),
            snap: Snapshot::unconstrained(),
        };
        let fat = Msg::ReadReq {
            tx: TxId::new(0, 1),
            key: Key(1),
            snap: Snapshot::greedy(16),
        };
        assert!(fat.wire_size() > lean.wire_size() + 16 * 16 - 1);
    }
}
